package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"elearncloud/internal/benchrec"
)

// writeRecord marshals a record into dir and returns its path.
func writeRecord(t *testing.T, dir, name string, rec *benchrec.SuiteRecord) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := rec.Encode(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// compareRecord is a small but realistic suite record for CLI tests.
func compareRecord() *benchrec.SuiteRecord {
	return &benchrec.SuiteRecord{
		Schema: benchrec.Schema, Seed: 1, Parallel: 4, GOMAXPROCS: 1,
		GoVersion: "go1.24.0", SuiteWallMS: 5000,
		ArtifactSHA256: strings.Repeat("aa", 32),
		Experiments: []benchrec.ExperimentRecord{
			{ID: "table1", Title: "t1", WallMS: 700, Jobs: 4, Bytes: 100, SHA256: strings.Repeat("11", 32)},
			{ID: "table2", Title: "t2", WallMS: 4000, Jobs: 3, Bytes: 200, SHA256: strings.Repeat("22", 32)},
		},
		Pool: benchrec.PoolRecord{Workers: 4, JobsRun: 10, PeakConcurrent: 4, TokenIdleMS: 500},
	}
}

// TestCompareSelfExitsZero: comparing a record against itself is the
// clean-path contract -compare's exit code rests on.
func TestCompareSelfExitsZero(t *testing.T) {
	dir := t.TempDir()
	path := writeRecord(t, dir, "rec.json", compareRecord())
	var buf bytes.Buffer
	if err := run([]string{"-compare", path, path}, &buf); err != nil {
		t.Fatalf("self-compare failed: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "0 regressions") || !strings.Contains(out, "2 unchanged") {
		t.Errorf("self-compare report wrong:\n%s", out)
	}
}

// TestCompareDetectsSlowdown is the acceptance gate: a synthetically
// slowed record must make -compare exit non-zero, report-only mode
// must swallow exactly that failure, and a loosened -compare-threshold
// must clear it.
func TestCompareDetectsSlowdown(t *testing.T) {
	dir := t.TempDir()
	old := compareRecord()
	slowed := compareRecord()
	slowed.Experiments[1].WallMS = 8000 // 2.00x over a 4000 ms base, far past the 250 ms floor
	oldPath := writeRecord(t, dir, "old.json", old)
	newPath := writeRecord(t, dir, "new.json", slowed)

	var buf bytes.Buffer
	err := run([]string{"-compare", oldPath, newPath}, &buf)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("2x slowdown not fatal: %v", err)
	}
	// The report must have been written before the failure so CI logs
	// show what regressed.
	if !strings.Contains(buf.String(), "REGRESSION") || !strings.Contains(buf.String(), "table2") {
		t.Errorf("failing compare wrote no usable report:\n%s", buf.String())
	}
	// Report-only: same comparison, exit 0.
	if err := run([]string{"-compare", "-compare-report-only", oldPath, newPath}, io.Discard); err != nil {
		t.Errorf("-compare-report-only still failed: %v", err)
	}
	// A threshold above the observed 2.00x ratio clears it.
	if err := run([]string{"-compare", "-compare-threshold", "2.5", oldPath, newPath}, io.Discard); err != nil {
		t.Errorf("loosened threshold still failed: %v", err)
	}
}

// TestCompareStrictSHADrift: output drift is report-only by default
// and fatal only under -compare-strict.
func TestCompareStrictSHADrift(t *testing.T) {
	dir := t.TempDir()
	old := compareRecord()
	drifted := compareRecord()
	drifted.Experiments[0].SHA256 = strings.Repeat("33", 32)
	drifted.ArtifactSHA256 = strings.Repeat("bb", 32)
	oldPath := writeRecord(t, dir, "old.json", old)
	newPath := writeRecord(t, dir, "new.json", drifted)

	var buf bytes.Buffer
	if err := run([]string{"-compare", oldPath, newPath}, &buf); err != nil {
		t.Fatalf("pure output drift failed the default gate: %v", err)
	}
	if !strings.Contains(buf.String(), "drift") {
		t.Errorf("drift not reported:\n%s", buf.String())
	}
	err := run([]string{"-compare", "-compare-strict", oldPath, newPath}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "drift") {
		t.Fatalf("-compare-strict ignored output drift: %v", err)
	}
	// Strict + report-only: report-only wins (the CI annotation mode).
	if err := run([]string{"-compare", "-compare-strict", "-compare-report-only", oldPath, newPath}, io.Discard); err != nil {
		t.Errorf("report-only did not override strict: %v", err)
	}
}

// TestCompareFormats: all three renderers run through the CLI, and the
// json one round-trips.
func TestCompareFormats(t *testing.T) {
	dir := t.TempDir()
	path := writeRecord(t, dir, "rec.json", compareRecord())
	for _, format := range []string{"text", "markdown", "json"} {
		var buf bytes.Buffer
		if err := run([]string{"-compare", "-compare-format", format, path, path}, &buf); err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("format %s wrote nothing", format)
		}
		if format == "json" {
			var rep benchrec.Report
			if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
				t.Errorf("json report does not parse: %v", err)
			}
		}
	}
	if err := run([]string{"-compare", "-compare-format", "yaml", path, path}, io.Discard); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestCompareRejectsMalformedRecord: a truncated record file is a load
// error, not a zero-valued comparison.
func TestCompareRejectsMalformedRecord(t *testing.T) {
	dir := t.TempDir()
	good := writeRecord(t, dir, "good.json", compareRecord())
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema": "elearncloud/bench/v1", "exp`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-compare", good, bad}, io.Discard); err == nil {
		t.Error("truncated new record accepted")
	}
	if err := run([]string{"-compare", bad, good}, io.Discard); err == nil {
		t.Error("truncated old record accepted")
	}
}

// TestCompareCommittedBaselines: each adjacent pair of committed
// baselines must compare cleanly in report-only mode — the same
// invocation shape the CI bench-compare job uses (wall-clocks may
// legitimately drift between container generations, and PR 5 adds two
// experiments; per-experiment artifact bytes must not drift).
func TestCompareCommittedBaselines(t *testing.T) {
	for _, pair := range [][2]string{
		{"../../BENCH_PR3.json", "../../BENCH_PR4.json"},
		{"../../BENCH_PR4.json", "../../BENCH_PR5.json"},
		{"../../BENCH_PR5.json", "../../BENCH_PR8.json"},
		{"../../BENCH_PR8.json", "../../BENCH_PR9.json"},
	} {
		var buf bytes.Buffer
		if err := run([]string{"-compare", "-compare-report-only",
			pair[0], pair[1]}, &buf); err != nil {
			t.Fatalf("%v compare errored: %v", pair, err)
		}
		if !strings.Contains(buf.String(), "0 output drifts") {
			t.Errorf("committed baselines %v show artifact drift:\n%s", pair, buf.String())
		}
	}
}
