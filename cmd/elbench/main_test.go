package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"elearncloud/internal/experiments"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-id", "table99"}, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestRunList: -list enumerates the registry as one id<TAB>title<TAB>tags
// line per experiment, in registry order, without simulating anything
// (it returns instantly even though a full run takes tens of seconds).
func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	all := experiments.All()
	if len(lines) != len(all) {
		t.Fatalf("-list printed %d lines, want %d", len(lines), len(all))
	}
	for i, e := range all {
		cols := strings.Split(lines[i], "\t")
		if len(cols) != 3 || cols[0] != e.ID || cols[1] != e.Title ||
			cols[2] != strings.Join(e.Tags, " ") {
			t.Errorf("line %d = %q, want %q<TAB>%q<TAB>%q",
				i, lines[i], e.ID, e.Title, strings.Join(e.Tags, " "))
		}
	}
}

// TestRunListTagFilter: -tag narrows the listing to experiments
// carrying the tag, with the leading @ optional.
func TestRunListTagFilter(t *testing.T) {
	for _, tag := range []string{"@mooc", "mooc"} {
		var buf bytes.Buffer
		if err := run([]string{"-list", "-tag", tag}, &buf); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
		want := 0
		for _, e := range experiments.All() {
			if e.HasTag("@mooc") {
				want++
			}
		}
		if want == 0 || len(lines) != want {
			t.Fatalf("-list -tag %s printed %d lines, want %d", tag, len(lines), want)
		}
		for _, l := range lines {
			if !strings.Contains(l, "@mooc") {
				t.Errorf("-list -tag %s printed %q without the tag", tag, l)
			}
		}
	}
}

// TestRunListUnknownTag: an unregistered tag is a hard error naming
// the known vocabulary, and -tag without -list is rejected.
func TestRunListUnknownTag(t *testing.T) {
	err := run([]string{"-list", "-tag", "bogus"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown tag") {
		t.Fatalf("unknown tag error = %v", err)
	}
	if !strings.Contains(err.Error(), "@mooc") {
		t.Errorf("error %v does not name the known tags", err)
	}
	if err := run([]string{"-tag", "mooc"}, io.Discard); err == nil {
		t.Fatal("-tag without -list accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunSingleExperimentText(t *testing.T) {
	// figure7 is analytic and fast.
	if err := run([]string{"-id", "figure7", "-seed", "2"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperimentCSV(t *testing.T) {
	if err := run([]string{"-id", "table7", "-csv"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsSeedZero(t *testing.T) {
	// Seed 0 is the batch runner's derive sentinel; the CLI refuses it.
	if err := run([]string{"-id", "figure7", "-seed", "0"}, io.Discard); err == nil {
		t.Fatal("seed 0 accepted")
	}
}

func TestRunParallelFlag(t *testing.T) {
	// Analytic experiment through an oversized pool: worker count must
	// never affect success (or, per TestRunParallelByteIdentity, output).
	if err := run([]string{"-id", "figure7", "-parallel", "8"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-id", "figure1", "-parallel", "1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestRunParallelByteIdentity is the CLI-level determinism gate: the
// exact bytes elbench emits must not depend on -parallel. The -id
// filter keeps the check affordable in CI — table5 exercises a real
// DES batch through the shared pool; the multi-experiment shared-pool
// case is pinned by TestSharedPoolDeterminism in internal/experiments,
// and the full 19-artifact identity was verified manually via cmp.
func TestRunParallelByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a DES experiment three times; skipped in -short mode")
	}
	render := func(parallel string) string {
		t.Helper()
		var buf bytes.Buffer
		if err := run([]string{"-id", "table5", "-parallel", parallel}, &buf); err != nil {
			t.Fatalf("-parallel %s: %v", parallel, err)
		}
		return buf.String()
	}
	serial := render("1")
	if serial == "" {
		t.Fatal("empty artifact")
	}
	for _, parallel := range []string{"4", "16"} {
		if got := render(parallel); got != serial {
			t.Errorf("-parallel %s output differs from -parallel 1:\n--- serial ---\n%s\n--- parallel ---\n%s",
				parallel, serial, got)
		}
	}
}
