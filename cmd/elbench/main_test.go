package main

import "testing"

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-id", "table99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunSingleExperimentText(t *testing.T) {
	// figure7 is analytic and fast.
	if err := run([]string{"-id", "figure7", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperimentCSV(t *testing.T) {
	if err := run([]string{"-id", "table7", "-csv"}); err != nil {
		t.Fatal(err)
	}
}
