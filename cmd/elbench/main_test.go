package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"elearncloud/internal/experiments"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-id", "table99"}, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestRunList: -list enumerates the registry as one id<TAB>title<TAB>tags
// line per experiment, in registry order, without simulating anything
// (it returns instantly even though a full run takes tens of seconds).
func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	all := experiments.All()
	if len(lines) != len(all) {
		t.Fatalf("-list printed %d lines, want %d", len(lines), len(all))
	}
	for i, e := range all {
		cols := strings.Split(lines[i], "\t")
		if len(cols) != 3 || cols[0] != e.ID || cols[1] != e.Title ||
			cols[2] != strings.Join(e.Tags, " ") {
			t.Errorf("line %d = %q, want %q<TAB>%q<TAB>%q",
				i, lines[i], e.ID, e.Title, strings.Join(e.Tags, " "))
		}
	}
}

// TestRunListTagFilter: -tag narrows the listing to experiments
// carrying the tag, with the leading @ optional.
func TestRunListTagFilter(t *testing.T) {
	for _, tag := range []string{"@mooc", "mooc"} {
		var buf bytes.Buffer
		if err := run([]string{"-list", "-tag", tag}, &buf); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
		want := 0
		for _, e := range experiments.All() {
			if e.HasTag("@mooc") {
				want++
			}
		}
		if want == 0 || len(lines) != want {
			t.Fatalf("-list -tag %s printed %d lines, want %d", tag, len(lines), want)
		}
		for _, l := range lines {
			if !strings.Contains(l, "@mooc") {
				t.Errorf("-list -tag %s printed %q without the tag", tag, l)
			}
		}
	}
}

// TestRunListUnknownTag: an unregistered tag is a hard error naming
// the known vocabulary, and -tag without -list is rejected.
func TestRunListUnknownTag(t *testing.T) {
	err := run([]string{"-list", "-tag", "bogus"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown tag") {
		t.Fatalf("unknown tag error = %v", err)
	}
	if !strings.Contains(err.Error(), "@mooc") {
		t.Errorf("error %v does not name the known tags", err)
	}
	if err := run([]string{"-tag", "mooc"}, io.Discard); err == nil {
		t.Fatal("-tag without -list accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunSingleExperimentText(t *testing.T) {
	// figure7 is analytic and fast.
	if err := run([]string{"-id", "figure7", "-seed", "2"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperimentCSV(t *testing.T) {
	if err := run([]string{"-id", "table7", "-csv"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsSeedZero(t *testing.T) {
	// Seed 0 is the batch runner's derive sentinel; the CLI refuses it.
	if err := run([]string{"-id", "figure7", "-seed", "0"}, io.Discard); err == nil {
		t.Fatal("seed 0 accepted")
	}
}

func TestRunParallelFlag(t *testing.T) {
	// Analytic experiment through an oversized pool: worker count must
	// never affect success (or, per TestRunParallelByteIdentity, output).
	if err := run([]string{"-id", "figure7", "-parallel", "8"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-id", "figure1", "-parallel", "1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestRunParallelByteIdentity is the CLI-level determinism gate: the
// exact bytes elbench emits must not depend on -parallel. The -id
// filter keeps the check affordable in CI — table5 exercises a real
// DES batch through the shared pool; the multi-experiment shared-pool
// case is pinned by TestSharedPoolDeterminism in internal/experiments,
// and the full 19-artifact identity was verified manually via cmp.
func TestRunParallelByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a DES experiment three times; skipped in -short mode")
	}
	render := func(parallel string) string {
		t.Helper()
		var buf bytes.Buffer
		if err := run([]string{"-id", "table5", "-parallel", parallel}, &buf); err != nil {
			t.Fatalf("-parallel %s: %v", parallel, err)
		}
		return buf.String()
	}
	serial := render("1")
	if serial == "" {
		t.Fatal("empty artifact")
	}
	for _, parallel := range []string{"4", "16"} {
		if got := render(parallel); got != serial {
			t.Errorf("-parallel %s output differs from -parallel 1:\n--- serial ---\n%s\n--- parallel ---\n%s",
				parallel, serial, got)
		}
	}
}

// TestRunFidelityFlagValidation pins the -fidelity flag's conflict
// rules alongside the other mode-exclusivity checks: it needs -id, it
// follows -shards' one-off-artifact policy, and -shards with -fidelity
// fluid in particular is a category error (no event loop to shard).
func TestRunFidelityFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no id", []string{"-fidelity", "des"}, "-fidelity needs -id"},
		{"with mode", []string{"-id", "table11", "-fidelity", "des", "-json"}, "does not combine"},
		{"with verify", []string{"-id", "table11", "-fidelity", "auto", "-verify"}, "does not combine"},
		{"shards+fluid", []string{"-id", "table11", "-fidelity", "fluid", "-shards", "4"}, "no event loop to shard"},
		{"shards+des", []string{"-id", "table11", "-fidelity", "des", "-shards", "4"}, "do not combine"},
		{"no variant", []string{"-id", "table5", "-fidelity", "des"}, "no fidelity variant"},
	}
	for _, c := range cases {
		err := run(c.args, io.Discard)
		if err == nil {
			t.Errorf("%s: %v accepted", c.name, c.args)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestRunFidelityUnknownValue reaches the variant itself: an
// unrecognized fidelity must fail with the accepted values listed.
func TestRunFidelityUnknownValue(t *testing.T) {
	err := run([]string{"-id", "table11", "-fidelity", "bogus"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown fidelity") {
		t.Fatalf("bogus fidelity: got %v", err)
	}
}

// TestRunFidelityFluid renders the cheap flow-level variant end to end.
func TestRunFidelityFluid(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-id", "table11", "-fidelity", "fluid"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fluid (whole horizon)") {
		t.Fatalf("fluid variant missing its row:\n%s", out)
	}
	if strings.Contains(out, "hybrid (auto fidelity)") {
		t.Fatalf("fluid variant rendered the hybrid row too:\n%s", out)
	}
}
