package main

import "testing"

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-id", "table99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunSingleExperimentText(t *testing.T) {
	// figure7 is analytic and fast.
	if err := run([]string{"-id", "figure7", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperimentCSV(t *testing.T) {
	if err := run([]string{"-id", "table7", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsSeedZero(t *testing.T) {
	// Seed 0 is the batch runner's derive sentinel; the CLI refuses it.
	if err := run([]string{"-id", "figure7", "-seed", "0"}); err == nil {
		t.Fatal("seed 0 accepted")
	}
}

func TestRunParallelFlag(t *testing.T) {
	// Analytic experiment through an oversized pool: worker count must
	// never affect success (or, per the determinism tests, output).
	if err := run([]string{"-id", "figure7", "-parallel", "8"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-id", "figure1", "-parallel", "1"}); err != nil {
		t.Fatal(err)
	}
}
