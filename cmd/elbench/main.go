// Command elbench regenerates every table and figure of the reproduction
// (see ARCHITECTURE.md's experiment index) and prints them to stdout.
//
// Usage:
//
//	elbench [-seed N] [-id table3] [-csv] [-parallel N]
//	elbench -json                       # machine-readable perf record
//	elbench -verify [-golden DIR]       # diff artifacts against the golden store
//	elbench -update [-golden DIR]       # regenerate the golden store
//
// With -id, only the named experiment runs; with -csv the table is
// emitted as CSV instead of aligned text. -parallel is a true global
// concurrency cap: one work-conserving scenario.Pool is shared by the
// across-experiments loop and every experiment's internal scenario
// batch, so any job from any experiment claims a core the moment one
// frees (default: one worker per CPU). Output is byte-identical for
// every -parallel value: experiments print in registry order, each
// scenario job's randomness is fixed at submission by its config and
// seed, and batch results are collected in submission order.
//
// -json replaces the artifact text with one JSON suite record: per
// experiment the wall-clock, jobs run (attributed via scenario.Meter),
// artifact size and SHA-256; plus the shared pool's realized-execution
// telemetry (scenario.PoolStats) and the SHA-256 of the concatenated
// artifact bytes. BENCH_PR3.json at the repo root is a committed record
// — the perf baseline new runs are compared against.
//
// -verify re-renders every artifact and diffs it byte-for-byte against
// testdata/golden/<id>.txt, failing on any drift; -update rewrites the
// store. The golden files are the enforced form of the "output is
// byte-identical" claim: CI verifies them at -parallel 1 and 4.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"elearncloud/internal/experiments"
	"elearncloud/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "elbench:", err)
		os.Exit(1)
	}
}

// artifact is one regenerated experiment plus its accounting.
type artifact struct {
	id, title string
	text      string // exactly the bytes the plain text mode prints
	wall      time.Duration
	jobs      uint64
}

// suiteRecord is the schema-stable machine-readable output of -json.
// Field order is emission order; additions must append, never reorder
// or rename, so committed records (BENCH_PR3.json) stay comparable.
type suiteRecord struct {
	Schema         string             `json:"schema"`
	Seed           uint64             `json:"seed"`
	Parallel       int                `json:"parallel"`
	GOMAXPROCS     int                `json:"gomaxprocs"`
	GoVersion      string             `json:"go_version"`
	SuiteWallMS    float64            `json:"suite_wall_ms"`
	ArtifactSHA256 string             `json:"artifact_sha256"`
	Experiments    []experimentRecord `json:"experiments"`
	Pool           poolRecord         `json:"pool"`
}

type experimentRecord struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	WallMS float64 `json:"wall_ms"`
	Jobs   uint64  `json:"jobs"`
	Bytes  int     `json:"bytes"`
	SHA256 string  `json:"sha256"`
}

type poolRecord struct {
	Workers        int     `json:"workers"`
	JobsRun        uint64  `json:"jobs_run"`
	HelperRecruits uint64  `json:"helper_recruits"`
	Handoffs       uint64  `json:"handoffs"`
	Donations      uint64  `json:"donations"`
	PeakConcurrent int     `json:"peak_concurrent"`
	TokenIdleMS    float64 `json:"token_idle_ms"`
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("elbench", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "simulation seed")
	id := fs.String("id", "", "run only this experiment id (e.g. table3, figure5)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	parallel := fs.Int("parallel", scenario.DefaultWorkers(),
		"global worker cap shared across and within experiments (results are identical for any value)")
	jsonOut := fs.Bool("json", false, "emit a machine-readable perf record instead of artifact text")
	verify := fs.Bool("verify", false, "diff regenerated artifacts against the golden store and fail on drift")
	update := fs.Bool("update", false, "rewrite the golden store from regenerated artifacts")
	golden := fs.String("golden", filepath.Join("testdata", "golden"),
		"golden artifact directory used by -verify and -update")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Seed 0 is the batch runner's "derive from (seed, job name)"
	// sentinel: batched jobs would be silently reseeded while direct
	// runs kept raw 0, so refuse the ambiguity outright.
	if *seed == 0 {
		return fmt.Errorf("-seed 0 is reserved (zero means \"derive\" inside scenario batches); pass a nonzero seed")
	}
	modes := 0
	for _, on := range []bool{*jsonOut, *verify, *update} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-json, -verify and -update are mutually exclusive")
	}
	if *csv && modes > 0 {
		return fmt.Errorf("-csv applies only to plain text output (the golden store and perf records are text-mode)")
	}
	if (*verify || *update) && *seed != 1 {
		return fmt.Errorf("the golden store is pinned at seed 1; -verify/-update with -seed %d would always drift", *seed)
	}

	var list []experiments.Experiment
	if *id != "" {
		e, err := experiments.Find(*id)
		if err != nil {
			return err
		}
		list = []experiments.Experiment{e}
	} else {
		list = experiments.All()
	}

	// Regenerate every artifact on one shared pool, then emit in
	// registry order — the parallel output must be indistinguishable
	// from the serial one. The same pool is threaded into every
	// experiment's internal batch, so the -parallel tokens span both
	// nesting levels: when the across-experiments loop drains (e.g.
	// through figure3's 32-job tail), its freed cores go straight to
	// whichever inner batches still hold work. Each experiment runs
	// through a metered view of the pool, so the suite record can
	// attribute jobs per experiment while the cap stays global.
	pool := scenario.NewPool(*parallel)
	arts := make([]artifact, len(list))
	suiteStart := time.Now()
	err := pool.ForEach(len(list), func(i int) error {
		var m scenario.Meter
		start := time.Now()
		tbl, err := list[i].Run(*seed, pool.WithMeter(&m))
		if err != nil {
			return fmt.Errorf("%s: %w", list[i].ID, err)
		}
		text := tbl.String() + "\n"
		if *csv {
			text = tbl.CSV()
		}
		arts[i] = artifact{
			id:    list[i].ID,
			title: list[i].Title,
			text:  text,
			wall:  time.Since(start),
			jobs:  m.Jobs(),
		}
		return nil
	})
	if err != nil {
		return err
	}
	suiteWall := time.Since(suiteStart)

	switch {
	case *jsonOut:
		return emitRecord(w, arts, *seed, *parallel, suiteWall, pool.Stats())
	case *verify:
		// A full run (no -id filter) also polices the store itself:
		// goldens with no matching experiment are drift too.
		return verifyGolden(w, arts, *golden, *id == "")
	case *update:
		return updateGolden(w, arts, *golden, *id == "")
	}
	for _, a := range arts {
		if _, err := io.WriteString(w, a.text); err != nil {
			return err
		}
	}
	return nil
}

func sha256Hex(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// emitRecord writes the -json suite record: per-experiment accounting
// plus the shared pool's telemetry.
func emitRecord(w io.Writer, arts []artifact, seed uint64, parallel int,
	suiteWall time.Duration, stats scenario.PoolStats) error {
	rec := suiteRecord{
		Schema:      "elearncloud/bench/v1",
		Seed:        seed,
		Parallel:    parallel,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		SuiteWallMS: float64(suiteWall) / float64(time.Millisecond),
		Pool: poolRecord{
			Workers:        stats.Workers,
			JobsRun:        stats.JobsRun,
			HelperRecruits: stats.HelperRecruits,
			Handoffs:       stats.Handoffs,
			Donations:      stats.Donations,
			PeakConcurrent: stats.PeakConcurrent,
			TokenIdleMS:    float64(stats.TokenIdle) / float64(time.Millisecond),
		},
	}
	var all bytes.Buffer
	for _, a := range arts {
		all.WriteString(a.text)
		rec.Experiments = append(rec.Experiments, experimentRecord{
			ID:     a.id,
			Title:  a.title,
			WallMS: float64(a.wall) / float64(time.Millisecond),
			Jobs:   a.jobs,
			Bytes:  len(a.text),
			SHA256: sha256Hex(a.text),
		})
	}
	rec.ArtifactSHA256 = sha256Hex(all.String())
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", out)
	return err
}

// orphanedGoldens lists .txt files in the store with no matching
// artifact — stale leftovers after an experiment rename or removal.
func orphanedGoldens(dir string, arts []artifact) ([]string, error) {
	ids := make(map[string]bool, len(arts))
	for _, a := range arts {
		ids[a.id] = true
	}
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		// No store at all: every artifact is already reported as a
		// missing golden file; don't let this error eat that report.
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var orphans []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".txt" {
			continue
		}
		if !ids[name[:len(name)-len(".txt")]] {
			orphans = append(orphans, name)
		}
	}
	return orphans, nil
}

// verifyGolden diffs every regenerated artifact against its committed
// golden copy and fails on the first byte of drift, reporting all
// drifted artifacts at once. On a full run it also rejects orphaned
// golden files, so a renamed or deleted experiment cannot leave a
// stale .txt rotting in the store.
func verifyGolden(w io.Writer, arts []artifact, dir string, full bool) error {
	var bad []string
	for _, a := range arts {
		path := filepath.Join(dir, a.id+".txt")
		want, err := os.ReadFile(path)
		if err != nil {
			bad = append(bad, fmt.Sprintf("%s: missing golden file %s (run elbench -update)", a.id, path))
			continue
		}
		if string(want) != a.text {
			bad = append(bad, fmt.Sprintf("%s: differs from %s (got %d bytes sha %.12s, want %d bytes sha %.12s)",
				a.id, path, len(a.text), sha256Hex(a.text), len(want), sha256Hex(string(want))))
		}
	}
	if full {
		orphans, err := orphanedGoldens(dir, arts)
		if err != nil {
			return err
		}
		for _, name := range orphans {
			bad = append(bad, fmt.Sprintf("%s: orphaned golden file with no matching experiment (stale after a rename? run elbench -update)",
				filepath.Join(dir, name)))
		}
	}
	if len(bad) > 0 {
		msg := fmt.Sprintf("golden verify failed for %d of %d artifact(s):", len(bad), len(arts))
		for _, b := range bad {
			msg += "\n  " + b
		}
		return fmt.Errorf("%s", msg)
	}
	_, err := fmt.Fprintf(w, "golden: %d/%d artifacts match %s\n", len(arts), len(arts), dir)
	return err
}

// updateGolden rewrites the golden store from the regenerated
// artifacts, deleting orphans on a full run. Commit the result only
// when an artifact change is intentional — the diff is the review
// surface.
func updateGolden(w io.Writer, arts []artifact, dir string, full bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, a := range arts {
		if err := os.WriteFile(filepath.Join(dir, a.id+".txt"), []byte(a.text), 0o644); err != nil {
			return err
		}
	}
	removed := 0
	if full {
		orphans, err := orphanedGoldens(dir, arts)
		if err != nil {
			return err
		}
		for _, name := range orphans {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
			removed++
		}
	}
	_, err := fmt.Fprintf(w, "golden: wrote %d artifact(s) to %s (%d orphan(s) removed)\n", len(arts), dir, removed)
	return err
}
