// Command elbench regenerates every table and figure of the reproduction
// (see ARCHITECTURE.md's experiment index) and prints them to stdout.
//
// Usage:
//
//	elbench [-seed N] [-id table3] [-csv] [-parallel N]
//	elbench -id table10 -shards 8       # render a sharded variant at an explicit shard count
//	elbench -id table11 -fidelity des   # render a fidelity variant (auto|fluid|des)
//	elbench -list                       # print experiment ids and titles, run nothing
//	elbench -json                       # machine-readable perf record
//	elbench -verify [-golden DIR]       # diff artifacts against the golden store
//	elbench -update [-golden DIR]       # regenerate the golden store
//	elbench -compare old.json new.json  # diff two perf records, fail on regression
//
// With -id, only the named experiment runs; with -csv the table is
// emitted as CSV instead of aligned text. -shards renders the -id
// experiment's shards-parameterized variant (experiments.ShardedVariant)
// at an explicit shard count — the knob CI's scale lane turns to pin
// that a fixed-shard-count artifact is byte-identical across -parallel
// values. It is plain-text/CSV only: the golden store and perf records
// pin the registry defaults. -fidelity renders the -id experiment's
// fidelity-parameterized variant (experiments.FidelityVariant): auto is
// the registry-default hybrid comparison, fluid and des force one
// model. -shards cannot combine with -fidelity fluid — the fluid model
// has no event loop to shard — and the two flags never compose anyway
// (no experiment registers both variants). -parallel is a true global
// concurrency cap: one work-conserving scenario.Pool is shared by the
// across-experiments loop and every experiment's internal scenario
// batch, so any job from any experiment claims a core the moment one
// frees (default: one worker per CPU). Output is byte-identical for
// every -parallel value: experiments print in registry order, each
// scenario job's randomness is fixed at submission by its config and
// seed, and batch results are collected in submission order.
//
// -json replaces the artifact text with one JSON suite record
// (internal/benchrec's SuiteRecord, schema elearncloud/bench/v1): per
// experiment the wall-clock, jobs run (attributed via scenario.Meter),
// artifact size and SHA-256; plus the shared pool's realized-execution
// telemetry (scenario.PoolStats) and the SHA-256 of the concatenated
// artifact bytes. BENCH_PR9.json at the repo root is the committed
// baseline new runs are compared against (BENCH_PR3.json through
// BENCH_PR8.json are its predecessors, kept for the trajectory).
//
// -compare loads two such records and reports per-experiment
// wall-clock deltas, artifact output drift, experiments added/removed,
// and pool-utilization drift (see ARCHITECTURE.md's "Comparing perf
// records"). It exits non-zero only on a wall-clock regression — new
// wall strictly above -compare-threshold × old and strictly more than
// -compare-floor-ms slower — or, with -compare-strict, on output
// drift. -compare-report-only prints the same report but always exits
// zero (how the noisy-runner CI job uses it), and -compare-format
// picks text (default), markdown, or json.
//
// -verify re-renders every artifact and diffs it byte-for-byte against
// testdata/golden/<id>.txt, failing on any drift; -update rewrites the
// store. The golden files are the enforced form of the "output is
// byte-identical" claim: CI verifies them at -parallel 1 and 4.
//
// -list prints one "id<TAB>title" line per registered experiment and
// exits without simulating anything — the enumeration surface for
// humans and for scripts/check-docs.sh's scenario-catalog cross-check
// (docs/SCENARIOS.md must list exactly these ids).
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"elearncloud/internal/benchrec"
	"elearncloud/internal/experiments"
	"elearncloud/internal/metrics"
	"elearncloud/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "elbench:", err)
		os.Exit(1)
	}
}

// artifact is one regenerated experiment plus its accounting.
type artifact struct {
	id, title string
	text      string // exactly the bytes the plain text mode prints
	wall      time.Duration
	jobs      uint64
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("elbench", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "simulation seed")
	id := fs.String("id", "", "run only this experiment id (e.g. table3, figure5)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	parallel := fs.Int("parallel", scenario.DefaultWorkers(),
		"global worker cap shared across and within experiments (results are identical for any value)")
	jsonOut := fs.Bool("json", false, "emit a machine-readable perf record instead of artifact text")
	verify := fs.Bool("verify", false, "diff regenerated artifacts against the golden store and fail on drift")
	update := fs.Bool("update", false, "rewrite the golden store from regenerated artifacts")
	golden := fs.String("golden", filepath.Join("testdata", "golden"),
		"golden artifact directory used by -verify and -update")
	compare := fs.Bool("compare", false,
		"compare two perf records (elbench -compare old.json new.json) and fail on wall-clock regression")
	compareThreshold := fs.Float64("compare-threshold", 1.25,
		"wall-clock ratio a -compare experiment must strictly exceed to count as a regression")
	compareFloor := fs.Float64("compare-floor-ms", 250,
		"noise floor for -compare: deltas at or under this many ms never regress, whatever the ratio")
	compareStrict := fs.Bool("compare-strict", false,
		"make -compare fail on artifact SHA drift too (output drift is otherwise report-only)")
	compareReportOnly := fs.Bool("compare-report-only", false,
		"print the -compare report but always exit zero (for noisy CI runners)")
	compareFormat := fs.String("compare-format", "text",
		"-compare report format: text, markdown or json")
	listMode := fs.Bool("list", false,
		"print registered experiment ids, titles and tags (tab-separated) and exit without running anything")
	tagFilter := fs.String("tag", "",
		"with -list: only print experiments carrying this tag (leading @ optional; unknown tags are an error)")
	shards := fs.Int("shards", 0,
		"with -id: render the experiment's sharded variant at this shard count (the CI scale lane's knob)")
	fidelity := fs.String("fidelity", "",
		"with -id: render the experiment's fidelity variant (auto, fluid or des)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*compare {
		var orphan []string
		fs.Visit(func(f *flag.Flag) {
			if strings.HasPrefix(f.Name, "compare-") {
				orphan = append(orphan, "-"+f.Name)
			}
		})
		if len(orphan) > 0 {
			return fmt.Errorf("%s only apply with -compare", strings.Join(orphan, ", "))
		}
	}
	// Seed 0 is the batch runner's "derive from (seed, job name)"
	// sentinel: batched jobs would be silently reseeded while direct
	// runs kept raw 0, so refuse the ambiguity outright.
	if *seed == 0 {
		return fmt.Errorf("-seed 0 is reserved (zero means \"derive\" inside scenario batches); pass a nonzero seed")
	}
	modes := 0
	for _, on := range []bool{*jsonOut, *verify, *update, *compare, *listMode} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-json, -verify, -update, -compare and -list are mutually exclusive")
	}
	if *tagFilter != "" && !*listMode {
		return fmt.Errorf("-tag filters the registry listing and only applies with -list")
	}
	// -shards renders a one-off artifact at an explicit shard count; the
	// golden store and perf records pin the registry defaults, so it is
	// plain-text/CSV only and needs a single named experiment.
	if *shards != 0 {
		if *shards < 0 {
			return fmt.Errorf("-shards %d: shard count must be positive", *shards)
		}
		if modes > 0 {
			return fmt.Errorf("-shards does not combine with -json, -verify, -update, -compare or -list")
		}
		if *id == "" {
			return fmt.Errorf("-shards needs -id naming the experiment to render")
		}
	}
	// -fidelity follows -shards' one-off-artifact policy, and the two
	// knobs never compose: shards parameterize an event loop, and the
	// fluid model in particular has none to shard.
	if *fidelity != "" {
		if *shards != 0 {
			if *fidelity == experiments.FidelityFluid {
				return fmt.Errorf("-shards does not combine with -fidelity fluid: the fluid model has no event loop to shard")
			}
			return fmt.Errorf("-shards and -fidelity are separate variants and do not combine")
		}
		if modes > 0 {
			return fmt.Errorf("-fidelity does not combine with -json, -verify, -update, -compare or -list")
		}
		if *id == "" {
			return fmt.Errorf("-fidelity needs -id naming the experiment to render")
		}
	}
	if *listMode {
		// Pure registry enumeration: nothing is simulated, so the
		// generation flags have nothing to act on (same policy as
		// -compare).
		var gen []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "seed", "id", "parallel", "golden", "csv":
				gen = append(gen, "-"+f.Name)
			}
		})
		if len(gen) > 0 {
			return fmt.Errorf("%s: artifact-generation flags do not apply to -list, which only reads the registry", strings.Join(gen, ", "))
		}
		if *tagFilter != "" {
			want := *tagFilter
			if !strings.HasPrefix(want, "@") {
				want = "@" + want
			}
			known := false
			for _, t := range experiments.KnownTags() {
				if t == want {
					known = true
					break
				}
			}
			if !known {
				return fmt.Errorf("unknown tag %q (known: %s)", *tagFilter, strings.Join(experiments.KnownTags(), " "))
			}
		}
		for _, e := range experiments.All() {
			if *tagFilter != "" && !e.HasTag(*tagFilter) {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s\t%s\t%s\n", e.ID, e.Title, strings.Join(e.Tags, " ")); err != nil {
				return err
			}
		}
		return nil
	}
	if *csv && modes > 0 {
		return fmt.Errorf("-csv applies only to plain text output (the golden store and perf records are text-mode)")
	}
	if (*verify || *update) && *seed != 1 {
		return fmt.Errorf("the golden store is pinned at seed 1; -verify/-update with -seed %d would always drift", *seed)
	}
	if *compare {
		// Compare is pure record arithmetic — nothing is simulated, so
		// the generation flags have nothing to act on; reject them
		// rather than silently ignoring an explicit setting.
		var gen []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "seed", "id", "parallel", "golden":
				gen = append(gen, "-"+f.Name)
			}
		})
		if len(gen) > 0 {
			return fmt.Errorf("%s: artifact-generation flags do not apply to -compare, which only reads records", strings.Join(gen, ", "))
		}
		return runCompare(w, fs.Args(), compareOptions{
			thresholds: benchrec.Thresholds{
				Ratio:    *compareThreshold,
				FloorMS:  *compareFloor,
				IdleFrac: benchrec.DefaultThresholds().IdleFrac,
			},
			strict:     *compareStrict,
			reportOnly: *compareReportOnly,
			format:     *compareFormat,
		})
	}

	var list []experiments.Experiment
	if *id != "" {
		e, err := experiments.Find(*id)
		if err != nil {
			return err
		}
		if *shards > 0 {
			runAt, ok := experiments.ShardedVariant(e.ID)
			if !ok {
				return fmt.Errorf("experiment %s has no sharded variant (see experiments.ShardedVariant)", e.ID)
			}
			n := *shards
			e.Run = func(seed uint64, pool *scenario.Pool) (*metrics.Table, error) {
				return runAt(seed, pool, n)
			}
		}
		if *fidelity != "" {
			runAt, ok := experiments.FidelityVariant(e.ID)
			if !ok {
				return fmt.Errorf("experiment %s has no fidelity variant (see experiments.FidelityVariant)", e.ID)
			}
			f := *fidelity
			e.Run = func(seed uint64, pool *scenario.Pool) (*metrics.Table, error) {
				return runAt(seed, pool, f)
			}
		}
		list = []experiments.Experiment{e}
	} else {
		list = experiments.All()
	}

	// Regenerate every artifact on one shared pool, then emit in
	// registry order — the parallel output must be indistinguishable
	// from the serial one. The same pool is threaded into every
	// experiment's internal batch, so the -parallel tokens span both
	// nesting levels: when the across-experiments loop drains (e.g.
	// through figure3's 32-job tail), its freed cores go straight to
	// whichever inner batches still hold work. Each experiment runs
	// through a metered view of the pool, so the suite record can
	// attribute jobs per experiment while the cap stays global.
	pool := scenario.NewPool(*parallel)
	arts := make([]artifact, len(list))
	suiteStart := time.Now()
	err := pool.ForEach(len(list), func(i int) error {
		var m scenario.Meter
		start := time.Now()
		tbl, err := list[i].Run(*seed, pool.WithMeter(&m))
		if err != nil {
			return fmt.Errorf("%s: %w", list[i].ID, err)
		}
		text := tbl.String() + "\n"
		if *csv {
			text = tbl.CSV()
		}
		arts[i] = artifact{
			id:    list[i].ID,
			title: list[i].Title,
			text:  text,
			wall:  time.Since(start),
			jobs:  m.Jobs(),
		}
		return nil
	})
	if err != nil {
		return err
	}
	suiteWall := time.Since(suiteStart)

	switch {
	case *jsonOut:
		return emitRecord(w, arts, *seed, *parallel, suiteWall, pool.Stats())
	case *verify:
		// A full run (no -id filter) also polices the store itself:
		// goldens with no matching experiment are drift too.
		return verifyGolden(w, arts, *golden, *id == "")
	case *update:
		return updateGolden(w, arts, *golden, *id == "")
	}
	for _, a := range arts {
		if _, err := io.WriteString(w, a.text); err != nil {
			return err
		}
	}
	return nil
}

func sha256Hex(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// compareOptions carries the -compare-* flag values into runCompare.
type compareOptions struct {
	thresholds benchrec.Thresholds
	strict     bool
	reportOnly bool
	format     string
}

// runCompare loads the two record paths left as positional args, diffs
// them with internal/benchrec, writes the report in the chosen format,
// and decides the exit status: wall-clock regressions fail, output
// drift fails only under -compare-strict, and -compare-report-only
// never fails. The report is written before the verdict error so a
// failing CI step still shows what regressed.
func runCompare(w io.Writer, paths []string, opts compareOptions) error {
	if len(paths) != 2 {
		return fmt.Errorf("-compare needs exactly two record paths (old.json new.json), got %d", len(paths))
	}
	switch opts.format {
	case "text", "markdown", "json":
	default:
		// Checked before any record is loaded so a typo fails fast.
		return fmt.Errorf("unknown -compare-format %q (want text, markdown or json)", opts.format)
	}
	old, err := benchrec.Load(paths[0])
	if err != nil {
		return err
	}
	new, err := benchrec.Load(paths[1])
	if err != nil {
		return err
	}
	rep, err := benchrec.Compare(old, new, opts.thresholds)
	if err != nil {
		return err
	}
	rep.OldLabel, rep.NewLabel = paths[0], paths[1]
	switch opts.format {
	case "text":
		if _, err := io.WriteString(w, rep.Text()); err != nil {
			return err
		}
	case "markdown":
		if _, err := io.WriteString(w, rep.Markdown()); err != nil {
			return err
		}
	default: // json; the format set was validated before loading
		out, err := rep.JSON()
		if err != nil {
			return err
		}
		if _, err := w.Write(out); err != nil {
			return err
		}
	}
	if opts.reportOnly {
		return nil
	}
	if rep.HasRegression() {
		return fmt.Errorf("perf regression vs %s: %s", paths[0], rep.Summary())
	}
	if opts.strict && rep.HasOutputDrift() {
		return fmt.Errorf("artifact output drift vs %s (fatal under -compare-strict): %s", paths[0], rep.Summary())
	}
	return nil
}

// emitRecord writes the -json suite record: per-experiment accounting
// plus the shared pool's telemetry, in benchrec's schema-stable form.
func emitRecord(w io.Writer, arts []artifact, seed uint64, parallel int,
	suiteWall time.Duration, stats scenario.PoolStats) error {
	rec := benchrec.SuiteRecord{
		Schema:      benchrec.Schema,
		Seed:        seed,
		Parallel:    parallel,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		SuiteWallMS: float64(suiteWall) / float64(time.Millisecond),
		Pool: benchrec.PoolRecord{
			Workers:          stats.Workers,
			JobsRun:          stats.JobsRun,
			HelperRecruits:   stats.HelperRecruits,
			Handoffs:         stats.Handoffs,
			Donations:        stats.Donations,
			PeakConcurrent:   stats.PeakConcurrent,
			TokenIdleMS:      float64(stats.TokenIdle) / float64(time.Millisecond),
			Shards:           stats.Shards,
			ShardEvents:      stats.ShardEvents,
			HybridFluidHours: stats.HybridFluidHours,
			HybridDESHours:   stats.HybridDESHours,
		},
	}
	var all bytes.Buffer
	for _, a := range arts {
		all.WriteString(a.text)
		rec.Experiments = append(rec.Experiments, benchrec.ExperimentRecord{
			ID:     a.id,
			Title:  a.title,
			WallMS: float64(a.wall) / float64(time.Millisecond),
			Jobs:   a.jobs,
			Bytes:  len(a.text),
			SHA256: sha256Hex(a.text),
		})
	}
	rec.ArtifactSHA256 = sha256Hex(all.String())
	return rec.Encode(w)
}

// orphanedGoldens lists .txt files in the store with no matching
// artifact — stale leftovers after an experiment rename or removal.
func orphanedGoldens(dir string, arts []artifact) ([]string, error) {
	ids := make(map[string]bool, len(arts))
	for _, a := range arts {
		ids[a.id] = true
	}
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		// No store at all: every artifact is already reported as a
		// missing golden file; don't let this error eat that report.
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var orphans []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".txt" {
			continue
		}
		if !ids[name[:len(name)-len(".txt")]] {
			orphans = append(orphans, name)
		}
	}
	return orphans, nil
}

// verifyGolden diffs every regenerated artifact against its committed
// golden copy and fails on the first byte of drift, reporting all
// drifted artifacts at once. On a full run it also rejects orphaned
// golden files, so a renamed or deleted experiment cannot leave a
// stale .txt rotting in the store.
func verifyGolden(w io.Writer, arts []artifact, dir string, full bool) error {
	var bad []string
	for _, a := range arts {
		path := filepath.Join(dir, a.id+".txt")
		want, err := os.ReadFile(path)
		if err != nil {
			bad = append(bad, fmt.Sprintf("%s: missing golden file %s (run elbench -update)", a.id, path))
			continue
		}
		if string(want) != a.text {
			bad = append(bad, fmt.Sprintf("%s: differs from %s (got %d bytes sha %.12s, want %d bytes sha %.12s)",
				a.id, path, len(a.text), sha256Hex(a.text), len(want), sha256Hex(string(want))))
		}
	}
	if full {
		orphans, err := orphanedGoldens(dir, arts)
		if err != nil {
			return err
		}
		for _, name := range orphans {
			bad = append(bad, fmt.Sprintf("%s: orphaned golden file with no matching experiment (stale after a rename? run elbench -update)",
				filepath.Join(dir, name)))
		}
	}
	if len(bad) > 0 {
		msg := fmt.Sprintf("golden verify failed for %d of %d artifact(s):", len(bad), len(arts))
		for _, b := range bad {
			msg += "\n  " + b
		}
		return fmt.Errorf("%s", msg)
	}
	_, err := fmt.Fprintf(w, "golden: %d/%d artifacts match %s\n", len(arts), len(arts), dir)
	return err
}

// updateGolden rewrites the golden store from the regenerated
// artifacts, deleting orphans on a full run. Commit the result only
// when an artifact change is intentional — the diff is the review
// surface.
func updateGolden(w io.Writer, arts []artifact, dir string, full bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, a := range arts {
		if err := os.WriteFile(filepath.Join(dir, a.id+".txt"), []byte(a.text), 0o644); err != nil {
			return err
		}
	}
	removed := 0
	if full {
		orphans, err := orphanedGoldens(dir, arts)
		if err != nil {
			return err
		}
		for _, name := range orphans {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
			removed++
		}
	}
	_, err := fmt.Fprintf(w, "golden: wrote %d artifact(s) to %s (%d orphan(s) removed)\n", len(arts), dir, removed)
	return err
}
