// Command elbench regenerates every table and figure of the reproduction
// (DESIGN.md experiment index) and prints them to stdout.
//
// Usage:
//
//	elbench [-seed N] [-id table3] [-csv]
//
// With -id, only the named experiment runs; with -csv the table is
// emitted as CSV instead of aligned text.
package main

import (
	"flag"
	"fmt"
	"os"

	"elearncloud/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "elbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("elbench", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "simulation seed")
	id := fs.String("id", "", "run only this experiment id (e.g. table3, figure5)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var list []experiments.Experiment
	if *id != "" {
		e, err := experiments.Find(*id)
		if err != nil {
			return err
		}
		list = []experiments.Experiment{e}
	} else {
		list = experiments.All()
	}

	for _, e := range list {
		tbl, err := e.Run(*seed)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *csv {
			fmt.Print(tbl.CSV())
		} else {
			fmt.Println(tbl.String())
		}
	}
	return nil
}
