// Command elbench regenerates every table and figure of the reproduction
// (see ARCHITECTURE.md's experiment index) and prints them to stdout.
//
// Usage:
//
//	elbench [-seed N] [-id table3] [-csv] [-parallel N]
//
// With -id, only the named experiment runs; with -csv the table is
// emitted as CSV instead of aligned text. -parallel is a true global
// concurrency cap: one work-conserving scenario.Pool is shared by the
// across-experiments loop and every experiment's internal scenario
// batch, so any job from any experiment claims a core the moment one
// frees (default: one worker per CPU). Output is byte-identical for
// every -parallel value: experiments print in registry order, each
// scenario job's randomness is fixed at submission by its config and
// seed, and batch results are collected in submission order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"elearncloud/internal/experiments"
	"elearncloud/internal/metrics"
	"elearncloud/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "elbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("elbench", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "simulation seed")
	id := fs.String("id", "", "run only this experiment id (e.g. table3, figure5)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	parallel := fs.Int("parallel", scenario.DefaultWorkers(),
		"global worker cap shared across and within experiments (results are identical for any value)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Seed 0 is the batch runner's "derive from (seed, job name)"
	// sentinel: batched jobs would be silently reseeded while direct
	// runs kept raw 0, so refuse the ambiguity outright.
	if *seed == 0 {
		return fmt.Errorf("-seed 0 is reserved (zero means \"derive\" inside scenario batches); pass a nonzero seed")
	}

	var list []experiments.Experiment
	if *id != "" {
		e, err := experiments.Find(*id)
		if err != nil {
			return err
		}
		list = []experiments.Experiment{e}
	} else {
		list = experiments.All()
	}

	// Regenerate every artifact on one shared pool, then print in
	// registry order — the parallel output must be indistinguishable
	// from the serial one. The same pool is threaded into every
	// experiment's internal batch, so the -parallel tokens span both
	// nesting levels: when the across-experiments loop drains (e.g.
	// through figure3's 32-job tail), its freed cores go straight to
	// whichever inner batches still hold work.
	pool := scenario.NewPool(*parallel)
	tables := make([]*metrics.Table, len(list))
	err := pool.ForEach(len(list), func(i int) error {
		tbl, err := list[i].Run(*seed, pool)
		if err != nil {
			return fmt.Errorf("%s: %w", list[i].ID, err)
		}
		tables[i] = tbl
		return nil
	})
	if err != nil {
		return err
	}

	for _, tbl := range tables {
		if *csv {
			fmt.Fprint(w, tbl.CSV())
		} else {
			fmt.Fprintln(w, tbl.String())
		}
	}
	return nil
}
