package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"elearncloud/internal/benchrec"
)

// repoGolden is the committed golden store, relative to this package.
const repoGolden = "../../testdata/golden"

// fastIDs are the artifacts cheap enough for the -short tier-1 lane
// (analytic or fluid-only, each well under ~1.5s on one core); the full
// run verifies all 19.
var fastIDs = []string{
	"table1", "table7", "table8",
	"figure1", "figure3", "figure4", "figure7", "figure8",
}

// TestGoldenArtifacts is the enforced form of the repo's byte-identity
// claim: regenerating any artifact at seed 1 must reproduce the
// committed testdata/golden bytes exactly, so a PR that silently
// changes an artifact fails tier-1 instead of rotting the goldens. In
// -short mode only the cheap subset runs; the full test (and the CI
// golden job, at -parallel 1 and 4) covers all 19.
func TestGoldenArtifacts(t *testing.T) {
	if !testing.Short() {
		if err := run([]string{"-verify", "-golden", repoGolden, "-parallel", "2"}, io.Discard); err != nil {
			t.Fatal(err)
		}
		return
	}
	for _, id := range fastIDs {
		if err := run([]string{"-verify", "-id", id, "-golden", repoGolden, "-parallel", "2"}, io.Discard); err != nil {
			t.Errorf("golden drift: %v", err)
		}
	}
}

// TestGoldenVerifyDetectsDrift closes the loop on the golden machinery
// itself: -update writes a store -verify accepts, and a corrupted or
// missing golden file makes -verify fail loudly.
func TestGoldenVerifyDetectsDrift(t *testing.T) {
	dir := t.TempDir()
	args := func(mode string) []string {
		return []string{mode, "-id", "figure7", "-golden", dir}
	}
	if err := run(args("-update"), io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(args("-verify"), io.Discard); err != nil {
		t.Fatalf("freshly updated store does not verify: %v", err)
	}
	path := filepath.Join(dir, "figure7.txt")
	if err := os.WriteFile(path, []byte("corrupted\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(args("-verify"), io.Discard)
	if err == nil || !strings.Contains(err.Error(), "figure7") {
		t.Fatalf("corrupted golden accepted: %v", err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	err = run(args("-verify"), io.Discard)
	if err == nil || !strings.Contains(err.Error(), "missing golden") {
		t.Fatalf("missing golden accepted: %v", err)
	}
}

// TestGoldenOrphanDetection: a full verify/update run polices the
// store itself — a golden file left behind by a renamed or deleted
// experiment fails -verify and is removed by -update, while -id subset
// runs leave unrelated goldens alone. Exercised directly on synthetic
// artifacts so it stays instant.
func TestGoldenOrphanDetection(t *testing.T) {
	dir := t.TempDir()
	arts := []artifact{{id: "table1", title: "t", text: "A\n"}}
	if err := updateGolden(io.Discard, arts, dir, true); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "stale.txt")
	if err := os.WriteFile(stale, []byte("left behind\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Subset runs must tolerate goldens they did not regenerate...
	if err := verifyGolden(io.Discard, arts, dir, false); err != nil {
		t.Fatalf("subset verify rejected an unrelated golden: %v", err)
	}
	// ...but a full run rejects the orphan.
	err := verifyGolden(io.Discard, arts, dir, true)
	if err == nil || !strings.Contains(err.Error(), "orphaned") {
		t.Fatalf("full verify accepted an orphaned golden: %v", err)
	}
	// A full -update sweeps it, after which full verify is clean.
	if err := updateGolden(io.Discard, arts, dir, true); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("full update left the orphan behind (stat err: %v)", err)
	}
	if err := verifyGolden(io.Discard, arts, dir, true); err != nil {
		t.Fatal(err)
	}
}

// TestJSONRecord checks the -json suite record is schema-stable and
// carries real accounting: per-experiment jobs attributed through the
// metered pool view, artifact hashes, and nonzero pool telemetry.
func TestJSONRecord(t *testing.T) {
	var buf bytes.Buffer
	// figure3 is fluid-only (fast) but fans 32 jobs through the pool.
	if err := run([]string{"-json", "-id", "figure3", "-parallel", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	var rec benchrec.SuiteRecord
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("record is not valid JSON: %v", err)
	}
	if rec.Schema != benchrec.Schema {
		t.Errorf("schema = %q", rec.Schema)
	}
	if rec.Seed != 1 || rec.Parallel != 4 {
		t.Errorf("seed/parallel = %d/%d, want 1/4", rec.Seed, rec.Parallel)
	}
	if len(rec.Experiments) != 1 {
		t.Fatalf("experiments = %d, want 1", len(rec.Experiments))
	}
	e := rec.Experiments[0]
	if e.ID != "figure3" || e.Jobs != 32 {
		t.Errorf("experiment %q ran %d jobs, want figure3 with 32", e.ID, e.Jobs)
	}
	if len(e.SHA256) != 64 || e.SHA256 != rec.ArtifactSHA256 {
		t.Errorf("single-artifact sha %q must equal suite sha %q", e.SHA256, rec.ArtifactSHA256)
	}
	if e.Bytes <= 0 || e.WallMS <= 0 {
		t.Errorf("empty accounting: bytes=%d wall=%v", e.Bytes, e.WallMS)
	}
	// 33 = 32 scenario jobs + the experiment-level ForEach body.
	if rec.Pool.JobsRun != 33 || rec.Pool.Workers != 4 {
		t.Errorf("pool = %+v, want 33 jobs on 4 workers", rec.Pool)
	}
	if rec.Pool.PeakConcurrent < 1 {
		t.Errorf("PeakConcurrent = %d", rec.Pool.PeakConcurrent)
	}
}

// TestModeFlagConflicts: the output modes are mutually exclusive, -csv
// is plain-text only, and the golden store is pinned at seed 1.
func TestModeFlagConflicts(t *testing.T) {
	for _, args := range [][]string{
		{"-json", "-verify"},
		{"-verify", "-update"},
		{"-csv", "-json"},
		{"-csv", "-update"},
		{"-verify", "-seed", "2"},
		{"-update", "-seed", "2"},
		{"-compare", "-json", "a.json", "b.json"},
		{"-compare", "-csv", "a.json", "b.json"},
		{"-compare", "-id", "table1", "a.json", "b.json"},
		{"-compare", "-seed", "2", "a.json", "b.json"},     // generation flags rejected...
		{"-compare", "-parallel", "8", "a.json", "b.json"}, // ...not silently ignored
		{"-compare", "-golden", "dir", "a.json", "b.json"},
		{"-compare-strict"},              // compare-* flags require -compare
		{"-compare-threshold", "1.5"},    // ditto
		{"-compare", "only-one.json"},    // needs exactly two paths
		{"-compare", "a.json", "b.json"}, // neither record exists
		{"-list", "-json"},               // -list is a mode like the others...
		{"-list", "-verify"},
		{"-list", "-compare", "a.json", "b.json"},
		{"-list", "-id", "table1"}, // ...and rejects generation flags
		{"-list", "-csv"},
		{"-list", "-parallel", "2"},
	} {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}
