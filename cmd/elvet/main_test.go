package main

import (
	"path/filepath"
	"strings"
	"testing"

	"elearncloud/internal/detlint"
)

func runElvet(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return out.String(), errb.String(), code
}

// TestList mirrors elbench -list: one name<TAB>doc line per registered
// analyzer, in registry order — the enumeration scripts/check-docs.sh
// cross-checks against ARCHITECTURE.md.
func TestList(t *testing.T) {
	out, _, code := runElvet(t, "-list")
	if code != 0 {
		t.Fatalf("elvet -list exited %d", code)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	reg := detlint.Analyzers()
	if len(lines) != len(reg) {
		t.Fatalf("want %d lines, got %d:\n%s", len(reg), len(lines), out)
	}
	for i, a := range reg {
		name, doc, ok := strings.Cut(lines[i], "\t")
		if !ok || name != a.Name || doc != a.Doc {
			t.Errorf("line %d = %q, want %q<TAB>%q", i, lines[i], a.Name, a.Doc)
		}
	}
}

func TestListTakesNoArguments(t *testing.T) {
	if _, _, code := runElvet(t, "-list", "./..."); code != 2 {
		t.Errorf("-list with patterns: exit %d, want 2", code)
	}
	if _, _, code := runElvet(t, "-dir", "x", "./..."); code != 2 {
		t.Errorf("-dir with patterns: exit %d, want 2", code)
	}
}

// TestNegativeCorpora is the acceptance gate: elvet must exit non-zero
// on every analyzer's negative corpus.
func TestNegativeCorpora(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short mode")
	}
	for _, corpus := range []string{"maporder", "seedrule", "poolonly", "mapprint", "suppress"} {
		dir := filepath.Join("..", "..", "internal", "detlint", "testdata", corpus)
		out, _, code := runElvet(t, "-dir", dir)
		if code != 1 {
			t.Errorf("elvet -dir %s: exit %d, want 1\n%s", corpus, code, out)
		}
		if !strings.Contains(out, "[") {
			t.Errorf("corpus %s produced no annotated findings:\n%s", corpus, out)
		}
	}
}

// TestTreeIsClean is the other half of the acceptance gate: the
// committed tree must lint clean, so a new order-sensitive loop or
// unrooted RNG cannot land without either a fix or a reasoned
// //detlint:allow.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	out, errb, code := runElvet(t, "elearncloud/...")
	if code != 0 {
		t.Fatalf("elvet elearncloud/... exited %d:\n%s%s", code, out, errb)
	}
}
