// Command elvet runs the repository's determinism analyzers
// (internal/detlint) over Go packages and exits non-zero on findings:
//
//	elvet ./...                  # lint the whole tree (the CI lint job)
//	elvet ./internal/cloud       # lint one package
//	elvet -list                  # print analyzer names and docs, run nothing
//	elvet -dir path/to/corpus    # lint a directory of loose files (testdata)
//
// Findings print one per line as file:line:col: message [analyzer], so
// editors and CI annotate them like any other vet output. A finding is
// suppressed — reason mandatory — with a comment on the offending line
// or the line above:
//
//	//detlint:allow <analyzer> <reason>
//
// See ARCHITECTURE.md's "Determinism invariants, statically enforced"
// for what each analyzer guards and why.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"elearncloud/internal/detlint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("elvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print one name<TAB>doc line per registered analyzer and exit")
	dir := fs.String("dir", "", "lint a directory of loose Go files instead of package patterns")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: elvet [-list] [-dir directory] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		if *dir != "" || fs.NArg() > 0 {
			fmt.Fprintln(stderr, "elvet: -list reads the analyzer registry and takes no other arguments")
			return 2
		}
		for _, a := range detlint.Analyzers() {
			fmt.Fprintf(stdout, "%s\t%s\n", a.Name, a.Doc)
		}
		return 0
	}

	var (
		pkgs []*detlint.Package
		err  error
	)
	if *dir != "" {
		if fs.NArg() > 0 {
			fmt.Fprintln(stderr, "elvet: -dir and package patterns are mutually exclusive")
			return 2
		}
		var pkg *detlint.Package
		pkg, err = detlint.LoadDir(*dir)
		if pkg != nil {
			pkgs = []*detlint.Package{pkg}
		}
	} else {
		patterns := fs.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		pkgs, err = detlint.Load("", patterns)
	}
	if err != nil {
		fmt.Fprintf(stderr, "elvet: %v\n", err)
		return 2
	}

	findings := detlint.Check(pkgs, nil)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "elvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
