package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"elearncloud/internal/metamorph"
)

// fixedNow is a frozen clock: the budget never expires under it.
func fixedNow() func() time.Time {
	t0 := time.Unix(1700000000, 0)
	return func() time.Time { return t0 }
}

// tickingNow advances one second per read, so a zero budget is already
// past its deadline at the first per-case check.
func tickingNow() func() time.Time {
	t0 := time.Unix(1700000000, 0)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Second)
	}
}

// TestRunList: -list prints one name<TAB>desc<TAB>tags line per
// registered family and runs nothing.
func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-list"}, &out, io.Discard, fixedNow()); code != 0 {
		t.Fatalf("exit %d", code)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	fams := metamorph.Families()
	if len(lines) != len(fams) {
		t.Fatalf("-list printed %d lines, want %d", len(lines), len(fams))
	}
	for i, f := range fams {
		cols := strings.Split(lines[i], "\t")
		if len(cols) != 3 || cols[0] != f.Name || cols[2] != strings.Join(f.Tags, " ") {
			t.Errorf("line %d = %q, want %s<TAB>...<TAB>%s", i, lines[i], f.Name, strings.Join(f.Tags, " "))
		}
	}
}

// TestRunUsageErrors: every malformed invocation exits 2 without
// running a case.
func TestRunUsageErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"bad flag":              {"-bogus"},
		"unknown family":        {"-family", "nosuch"},
		"positional args":       {"extra"},
		"case-seed sans family": {"-case-seed", "0x1"},
		"bad case-seed":         {"-family", "campus", "-case-seed", "zzz"},
		"non-positive n":        {"-n", "0"},
	} {
		if code := run(args, io.Discard, io.Discard, fixedNow()); code != 2 {
			t.Errorf("%s: exit %d, want 2", name, code)
		}
	}
}

// TestRunSingleCase replays one case by seed — the repro path a
// nightly failure hands a developer — and must pass on a seed the
// sweeps cleared. Skipped in -short: it runs the full invariant suite
// including two request-level simulations.
func TestRunSingleCase(t *testing.T) {
	if testing.Short() {
		t.Skip("runs request-level scenarios")
	}
	var out bytes.Buffer
	args := []string{"-family", "campus", "-case-seed", "0x1"}
	if code := run(args, &out, io.Discard, fixedNow()); code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "campus seed=0x1: ok") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
	// Decimal and hex spellings of the seed run the identical case.
	var dec bytes.Buffer
	if code := run([]string{"-family", "campus", "-case-seed", "1"}, &dec, io.Discard, fixedNow()); code != 0 {
		t.Fatalf("decimal seed: exit %d", code)
	}
	if dec.String() != out.String() {
		t.Fatalf("decimal and hex case-seed outputs differ:\n%s\nvs\n%s", dec.String(), out.String())
	}
}

// TestRunBudgetExhausted: an already-expired budget reports every case
// as unrun and still exits 0 (skipping is not a violation).
func TestRunBudgetExhausted(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-family", "campus", "-n", "5", "-budget", "0s"}, &out, io.Discard, tickingNow())
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "skipping 5 remaining cases") ||
		!strings.Contains(out.String(), "5 cases unrun (budget)") {
		t.Fatalf("budget exhaustion not reported:\n%s", out.String())
	}
}

// TestRunReproFileAppends: -repro must append (CI retries on the same
// artifact path must not clobber earlier findings) and create the file
// even when no violation writes to it.
func TestRunReproFileAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repro.txt")
	if err := os.WriteFile(path, []byte("earlier\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code := run([]string{"-family", "campus", "-n", "1", "-budget", "0s", "-repro", path}, io.Discard, io.Discard, tickingNow())
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "earlier\n" {
		t.Fatalf("repro file clobbered: %q", got)
	}
}
