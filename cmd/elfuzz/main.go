// Command elfuzz is the metamorphic chaos fuzzer: it draws seeded
// random scenarios from the internal/metamorph families, checks the
// metamorphic invariant suite on each, and on a violation shrinks the
// config to the smallest still-failing repro:
//
//	elfuzz                              # 25 cases per family, seed 1
//	elfuzz -family mooc -n 25 -seed 1   # one family, explicit run seed
//	elfuzz -family storm -minimize      # shrink any violation found
//	elfuzz -family chaos -case-seed 0xdeadbeef -minimize
//	                                    # re-run one exact case by seed
//	elfuzz -band                        # add the cross-seed statistical
//	                                    # invariants (nightly budget)
//	elfuzz -list                        # print the family registry
//
// Every case is a reproducible (family, case seed) pair: the per-case
// seeds are derived from the run seed via sim.SeedFor, and the printed
// repro command pins the case seed directly, so a nightly failure replays
// locally with one line. -budget bounds wall clock (remaining cases are
// reported as skipped, never silently dropped); -repro appends each
// minimized repro to a file for CI artifact upload.
//
// Exit codes follow elvet: 0 clean, 1 violations found, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"elearncloud/internal/metamorph"
	"elearncloud/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, time.Now))
}

// run is the testable driver. now supplies wall clock for the budget
// check (the simulator itself never reads it).
func run(args []string, stdout, stderr io.Writer, now func() time.Time) int {
	fs := flag.NewFlagSet("elfuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	family := fs.String("family", "all", "family to fuzz (campus, mooc, storm, chaos, hybrid, or all)")
	n := fs.Int("n", 25, "cases per family")
	seed := fs.Uint64("seed", 1, "run seed: case seeds derive from it via sim.SeedFor")
	budget := fs.Duration("budget", 5*time.Minute, "wall-clock budget; cases beyond it are reported as skipped")
	minimize := fs.Bool("minimize", false, "shrink each violating config to a minimal repro")
	band := fs.Bool("band", false, "also run the cross-seed statistical invariants (50 request-level runs per feasible case)")
	caseSeed := fs.String("case-seed", "", "re-run exactly one case by its seed (decimal or 0x hex); requires -family")
	reproPath := fs.String("repro", "", "append minimized repros to this file (for CI artifacts)")
	list := fs.Bool("list", false, "print one family per line (name, description, tags) and exit")
	verbose := fs.Bool("v", false, "print per-invariant detail for every case, not just violations")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: elfuzz [-family name] [-n cases] [-seed N] [-budget dur] [-minimize] [-band] [-case-seed N] [-repro file] [-list] [-v]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "elfuzz: unexpected arguments %q\n", fs.Args())
		return 2
	}

	if *list {
		for _, f := range metamorph.Families() {
			fmt.Fprintf(stdout, "%s\t%s\t%s\n", f.Name, f.Desc, strings.Join(f.Tags, " "))
		}
		return 0
	}

	var families []metamorph.Family
	if *family == "all" {
		families = metamorph.Families()
	} else {
		f, err := metamorph.FindFamily(*family)
		if err != nil {
			fmt.Fprintf(stderr, "elfuzz: %v (families: %s)\n", err, familyNames())
			return 2
		}
		families = []metamorph.Family{f}
	}

	var repro io.Writer
	if *reproPath != "" {
		f, err := os.OpenFile(*reproPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(stderr, "elfuzz: %v\n", err)
			return 2
		}
		defer f.Close()
		repro = f
	}

	d := driver{
		stdout: stdout, minimize: *minimize, verbose: *verbose,
		opts:  metamorph.Options{Band: *band},
		repro: repro, deadline: now().Add(*budget), now: now,
	}

	if *caseSeed != "" {
		if *family == "all" {
			fmt.Fprintln(stderr, "elfuzz: -case-seed re-runs one case of one family; pass -family")
			return 2
		}
		var cs uint64
		if _, err := fmt.Sscanf(strings.ToLower(*caseSeed), "0x%x", &cs); err != nil {
			if _, err := fmt.Sscanf(*caseSeed, "%d", &cs); err != nil {
				fmt.Fprintf(stderr, "elfuzz: bad -case-seed %q (want decimal or 0x hex)\n", *caseSeed)
				return 2
			}
		}
		if d.runCase(families[0].Case(cs)); d.violations > 0 {
			return 1
		}
		return 0
	}

	if *n <= 0 {
		fmt.Fprintf(stderr, "elfuzz: -n %d, need > 0\n", *n)
		return 2
	}
	for _, f := range families {
		for i := 0; i < *n; i++ {
			if d.now().After(d.deadline) {
				d.skipped += (*n - i)
				fmt.Fprintf(stdout, "%s: budget exhausted, skipping %d remaining cases\n", f.Name, *n-i)
				break
			}
			d.runCase(f.Case(metamorph.CaseSeed(*seed, f.Name, i)))
		}
	}

	fmt.Fprintf(stdout, "elfuzz: %d cases, %d checks (%d skipped), %d violations",
		d.cases, d.checks, d.checksSkipped, d.violations)
	if d.skipped > 0 {
		fmt.Fprintf(stdout, ", %d cases unrun (budget)", d.skipped)
	}
	fmt.Fprintln(stdout)
	if d.violations > 0 {
		return 1
	}
	return 0
}

// driver accumulates run state across cases.
type driver struct {
	stdout   io.Writer
	repro    io.Writer
	minimize bool
	verbose  bool
	opts     metamorph.Options
	deadline time.Time
	now      func() time.Time

	cases, checks, checksSkipped, skipped, violations int
}

// runCase checks one generated case and reports its verdict.
func (d *driver) runCase(c metamorph.Case) {
	d.cases++
	rep := metamorph.CheckCase(c, d.opts)
	var failed []metamorph.CheckResult
	for _, cr := range rep.Results {
		d.checks++
		if cr.Skipped != "" {
			d.checksSkipped++
		}
		if cr.V != nil {
			failed = append(failed, cr)
		}
		if d.verbose {
			switch {
			case cr.V != nil:
				fmt.Fprintf(d.stdout, "  %s: VIOLATION: %s\n", cr.Name, cr.V.Detail)
			case cr.Skipped != "":
				fmt.Fprintf(d.stdout, "  %s: skipped (%s)\n", cr.Name, cr.Skipped)
			default:
				fmt.Fprintf(d.stdout, "  %s: ok\n", cr.Name)
			}
		}
	}
	if len(failed) == 0 {
		fmt.Fprintf(d.stdout, "%s seed=%#x: ok (%d checks)\n", c.Family, c.Seed, len(rep.Results))
		return
	}
	d.violations += len(failed)
	for _, cr := range failed {
		fmt.Fprintf(d.stdout, "%s seed=%#x: VIOLATION %s: %s\n", c.Family, c.Seed, cr.Name, cr.V.Detail)
		if d.minimize {
			d.shrink(c, cr.Name)
		}
	}
}

// shrink minimizes the case's config against the named invariant and
// prints (and optionally records) the repro.
func (d *driver) shrink(c metamorph.Case, invName string) {
	inv, err := metamorph.FindInvariant(invName)
	if err != nil {
		fmt.Fprintf(d.stdout, "  minimize: %v\n", err)
		return
	}
	res := metamorph.Minimize(c.Cfg, func(cfg scenario.Config) bool {
		v, skip := inv.Check(cfg, c.Seed)
		return skip == "" && v != nil
	}, 0)
	lines := metamorph.DescribeConfig(res.Cfg)
	fmt.Fprintf(d.stdout, "  minimized (%d evals, %d shrinks): \n", res.Evals, len(res.Steps))
	for _, l := range lines {
		fmt.Fprintf(d.stdout, "    %s\n", l)
	}
	cmd := metamorph.ReproCommand(c.Family, c.Seed)
	fmt.Fprintf(d.stdout, "  repro: %s\n", cmd)
	if d.repro != nil {
		fmt.Fprintf(d.repro, "# %s %s\n", c.Family, invName)
		for _, l := range lines {
			fmt.Fprintf(d.repro, "# %s\n", l)
		}
		fmt.Fprintf(d.repro, "%s\n\n", cmd)
	}
}

// familyNames lists the registered family names for error messages.
func familyNames() string {
	var names []string
	for _, f := range metamorph.Families() {
		names = append(names, f.Name)
	}
	return strings.Join(names, ", ")
}
