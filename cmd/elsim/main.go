// Command elsim runs a single e-learning deployment scenario and prints
// the measured result.
//
// Usage:
//
//	elsim -model hybrid -students 2000 -hours 6 -access rural-dsl \
//	      -scaler reactive -exam -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/metrics"
	"elearncloud/internal/network"
	"elearncloud/internal/scenario"
	"elearncloud/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "elsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("elsim", flag.ContinueOnError)
	var (
		model    = fs.String("model", "public", "deployment model: public|private|hybrid|desktop")
		students = fs.Int("students", 1000, "student population")
		hours    = fs.Float64("hours", 6, "simulated hours")
		access   = fs.String("access", "urban-broadband", "access profile: campus-lan|urban-broadband|rural-dsl")
		scaler   = fs.String("scaler", "reactive", "autoscaler: fixed|reactive|scheduled|predictive")
		exam     = fs.Bool("exam", false, "inject a 10x exam flash crowd mid-run")
		threats  = fs.Bool("threats", false, "enable the security threat model")
		useCDN   = fs.Bool("cdn", false, "serve video through an edge CDN")
		seed     = fs.Uint64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := scenario.Config{
		Seed:          *seed,
		Students:      *students,
		Duration:      time.Duration(*hours * float64(time.Hour)),
		EnableThreats: *threats,
		EnableCDN:     *useCDN,
	}
	switch *model {
	case "public":
		cfg.Kind = deploy.Public
	case "private":
		cfg.Kind = deploy.Private
	case "hybrid":
		cfg.Kind = deploy.Hybrid
	case "desktop":
		cfg.Kind = deploy.Desktop
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	switch *access {
	case "campus-lan":
		cfg.Access = network.CampusLAN
	case "urban-broadband":
		cfg.Access = network.UrbanBroadband
	case "rural-dsl":
		cfg.Access = network.RuralDSL
	default:
		return fmt.Errorf("unknown access profile %q", *access)
	}
	switch *scaler {
	case "fixed":
		cfg.Scaler = scenario.ScalerFixed
	case "reactive":
		cfg.Scaler = scenario.ScalerReactive
	case "scheduled":
		cfg.Scaler = scenario.ScalerScheduled
	case "predictive":
		cfg.Scaler = scenario.ScalerPredictive
	default:
		return fmt.Errorf("unknown scaler %q", *scaler)
	}
	if *exam {
		mid := cfg.Duration / 2
		cfg.Crowds = []workload.FlashCrowd{{
			Start: mid - 30*time.Minute, End: mid + 30*time.Minute,
			Mult: 10, ExamTraffic: true,
		}}
	}

	res, err := scenario.Run(cfg)
	if err != nil {
		return err
	}
	printResult(cfg, res)
	return nil
}

func printResult(cfg scenario.Config, res *scenario.Result) {
	fmt.Printf("model=%s scaler=%s students=%d horizon=%s seed=%d\n\n",
		res.Kind, res.Scaler, cfg.Students, res.Duration, cfg.Seed)
	s := res.Latency.Summarize()
	fmt.Printf("requests: served=%d rejected=%d offline=%d (error rate %s)\n",
		res.Served, res.Rejected, res.Offline, metrics.FmtPercent(res.ErrorRate()))
	fmt.Printf("latency:  p50=%s p95=%s p99=%s max=%s\n",
		metrics.FmtMillis(s.P50), metrics.FmtMillis(s.P95),
		metrics.FmtMillis(s.P99), metrics.FmtMillis(s.Max))
	fmt.Printf("fleet:    peak=%d servers, public %.1f VM-h, private %.1f VM-h on %d hosts\n",
		res.PeakServers, res.VMHoursPublic, res.VMHoursPrivate, res.PrivateHosts)
	fmt.Printf("network:  availability=%s disconnects=%d lost work=%s egress=%.2f GB\n",
		metrics.FmtPercent(res.NetAvailability), res.Disconnects,
		res.LostWork.Round(time.Second), res.EgressGB)
	if res.CDNGB > 0 {
		fmt.Printf("cdn:      %.2f GB delivered at %s hit ratio\n",
			res.CDNGB, metrics.FmtPercent(res.CDNHitRatio))
	}
	if res.PolicyViolations > 0 {
		fmt.Printf("hybrid:   %d sensitive requests burst to public\n", res.PolicyViolations)
	}
	if res.Breaches+res.DataLossEvents > 0 {
		fmt.Printf("threats:  breaches=%d exposures=%d loss events=%d bytes lost=%.1f GB\n",
			res.Breaches, res.SensitiveExposures, res.DataLossEvents, res.BytesLost/1e9)
	}
	fmt.Printf("cost:     %s (%s per student-month)\n",
		metrics.FmtDollars(res.Cost.Total()),
		metrics.FmtDollars(res.CostPerStudentMonth(cfg.Students)))
}
