package main

import (
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := map[string][]string{
		"bad model":  {"-model", "mainframe"},
		"bad access": {"-access", "carrier-pigeon"},
		"bad scaler": {"-scaler", "psychic"},
		"bad flag":   {"-nonsense"},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRunTinyScenarioSucceeds(t *testing.T) {
	err := run([]string{
		"-model", "private", "-students", "50", "-hours", "0.25",
		"-access", "campus-lan", "-scaler", "fixed", "-seed", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunExamAndCDNFlags(t *testing.T) {
	err := run([]string{
		"-model", "public", "-students", "50", "-hours", "0.5",
		"-exam", "-cdn", "-seed", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrorMentionsValue(t *testing.T) {
	err := run([]string{"-model", "mainframe"})
	if err == nil || !strings.Contains(err.Error(), "mainframe") {
		t.Fatalf("err = %v, want mention of bad value", err)
	}
}
