package main

import "testing"

func TestRunUnknownProfile(t *testing.T) {
	if err := run([]string{"-profile", "hogwarts"}); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunSmallProfile(t *testing.T) {
	// Override to a tiny population so the measurement pass stays fast.
	if err := run([]string{"-profile", "rural-school", "-students", "150", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}
