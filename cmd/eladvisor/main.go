// Command eladvisor measures the three cloud deployment models at an
// institution's scale, prints the comparison matrix, and recommends a
// model for the chosen requirement profile — the paper's §IV comparison
// as a tool.
//
// Usage:
//
//	eladvisor -profile mid-college [-students 3000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"elearncloud/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eladvisor:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eladvisor", flag.ContinueOnError)
	var (
		profileName = fs.String("profile", "mid-college", "institution profile: rural-school|mid-college|national-platform")
		students    = fs.Int("students", 0, "override the profile's student population")
		seed        = fs.Uint64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var profile core.Profile
	switch *profileName {
	case "rural-school":
		profile = core.RuralSchool
	case "mid-college":
		profile = core.MidCollege
	case "national-platform":
		profile = core.NationalPlatform
	default:
		return fmt.Errorf("unknown profile %q", *profileName)
	}
	if *students > 0 {
		profile.Students = *students
	}

	fmt.Printf("measuring deployment models for %s (%d students, seed %d)...\n\n",
		profile.Name, profile.Students, *seed)
	in, err := core.MeasureForProfile(profile, *seed)
	if err != nil {
		return err
	}
	sc, err := core.BuildScorecard(in)
	if err != nil {
		return err
	}
	fmt.Println(sc.Table().String())

	recs, err := sc.Recommend(profile)
	if err != nil {
		return err
	}
	fmt.Println("recommendation:", core.Explain(profile, recs))
	fmt.Println("\nweights:")
	for _, r := range core.Requirements() {
		if w, ok := profile.Weights[r]; ok {
			fmt.Printf("  %-14s %.2f\n", r, w)
		}
	}
	return nil
}
