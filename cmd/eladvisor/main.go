// Command eladvisor measures the three cloud deployment models at an
// institution's scale, prints the comparison matrix, and recommends a
// model for the chosen requirement profile — the paper's §IV comparison
// as a tool. With -forecast it turns optimizer: given a projected
// enrollment growth curve, it evaluates a deployment-plan grid (model ×
// scaling policy × purchase mix) through a simulation of that curve and
// answers "the cheapest P95-compliant plan is X".
//
// Usage:
//
//	eladvisor -profile mid-college [-students 3000] [-seed 1]
//	eladvisor -forecast [-growth logistic|linear] [-from 1000] [-to 8000]
//	          [-over 45m] [-horizon 2h] [-slo 500] [-budget 25] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"elearncloud/internal/core"
	"elearncloud/internal/cost"
	"elearncloud/internal/metrics"
	"elearncloud/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eladvisor:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eladvisor", flag.ContinueOnError)
	var (
		profileName = fs.String("profile", "mid-college", "institution profile: rural-school|mid-college|national-platform")
		students    = fs.Int("students", 0, "override the profile's student population")
		seed        = fs.Uint64("seed", 1, "simulation seed")

		forecast   = fs.Bool("forecast", false, "optimizer mode: evaluate a deployment-plan grid through a projected growth curve")
		growthKind = fs.String("growth", "logistic", "-forecast growth shape: logistic (viral course) or linear (cohort ramp)")
		growFrom   = fs.Int("from", 1000, "-forecast starting enrollment")
		growTo     = fs.Int("to", 8000, "-forecast final enrollment (logistic capacity / linear endpoint)")
		growOver   = fs.Duration("over", 45*time.Minute, "-forecast curve timescale: logistic midpoint or linear ramp length")
		horizon    = fs.Duration("horizon", 2*time.Hour, "-forecast simulated horizon")
		sloMillis  = fs.Float64("slo", 600, "-forecast P95 latency SLO in milliseconds")
		budget     = fs.Float64("budget", 0, "-forecast optional budget in USD over the horizon (0 = no budget question)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *forecast {
		return runForecast(*growthKind, *growFrom, *growTo, *growOver, *horizon, *sloMillis, *budget, *seed)
	}

	var profile core.Profile
	switch *profileName {
	case "rural-school":
		profile = core.RuralSchool
	case "mid-college":
		profile = core.MidCollege
	case "national-platform":
		profile = core.NationalPlatform
	default:
		return fmt.Errorf("unknown profile %q", *profileName)
	}
	if *students > 0 {
		profile.Students = *students
	}

	fmt.Printf("measuring deployment models for %s (%d students, seed %d)...\n\n",
		profile.Name, profile.Students, *seed)
	in, err := core.MeasureForProfile(profile, *seed)
	if err != nil {
		return err
	}
	sc, err := core.BuildScorecard(in)
	if err != nil {
		return err
	}
	fmt.Println(sc.Table().String())

	recs, err := sc.Recommend(profile)
	if err != nil {
		return err
	}
	fmt.Println("recommendation:", core.Explain(profile, recs))
	fmt.Println("\nweights:")
	for _, r := range core.Requirements() {
		if w, ok := profile.Weights[r]; ok {
			fmt.Printf("  %-14s %.2f\n", r, w)
		}
	}
	return nil
}

// runForecast is the optimizer mode: simulate the plan grid through the
// projected curve, print the evaluated points with the Pareto frontier
// marked, and answer the SLO (and optional budget) question.
func runForecast(growthKind string, from, to int, over, horizon time.Duration, sloMillis, budget float64, seed uint64) error {
	var growth *workload.Growth
	switch growthKind {
	case "logistic":
		growth = workload.LogisticGrowth(from, to, over)
	case "linear":
		growth = workload.LinearGrowth(from, to, over)
	default:
		return fmt.Errorf("unknown growth shape %q (want logistic or linear)", growthKind)
	}

	fmt.Printf("evaluating deployment plans for %s enrollment %d→%d over %v (horizon %v, seed %d)...\n\n",
		growthKind, from, to, over, horizon, seed)
	points, err := core.ForecastFrontier(core.ForecastConfig{
		Seed:     seed,
		Growth:   growth,
		Duration: horizon,
	})
	if err != nil {
		return err
	}

	frontier := cost.ParetoSearch(points)
	onFrontier := make(map[cost.PlanPoint]bool, len(frontier))
	for _, p := range frontier {
		onFrontier[p] = true
	}

	t := metrics.NewTable(
		fmt.Sprintf("Deployment plans through %s growth %d→%d (cost vs P95)", growthKind, from, to),
		"plan", "reserved", "$ horizon", "p95", "errors", "VM-hours", "frontier")
	sorted := append([]cost.PlanPoint(nil), points...)
	cost.SortPlans(sorted)
	for _, p := range sorted {
		mark := ""
		if onFrontier[p] {
			mark = "*"
		}
		t.AddRow(p.Model+", "+p.Scaler+", "+p.Mix,
			p.Reserved,
			fmt.Sprintf("%.2f", p.USD),
			metrics.FmtMillis(p.P95),
			metrics.FmtPercent(p.ErrorRate),
			fmt.Sprintf("%.1f", p.VMHours),
			mark)
	}
	t.AddNote("* = on the cost/P95 Pareto frontier; purchase mixes reprice compute only, so they share a latency with their scaler")
	fmt.Println(t.String())

	if best, ok := cost.CheapestCompliant(points, sloMillis/1000); ok {
		fmt.Printf("cheapest P95-compliant plan (SLO %.0fms): %s with the %s scaler, %s purchase mix — $%.2f over the horizon at %s P95\n",
			sloMillis, best.Model, best.Scaler, best.Mix, best.USD, metrics.FmtMillis(best.P95))
	} else if len(frontier) > 0 {
		// The frontier is sorted cheapest-first, so its last point is the
		// fastest anything on the grid achieved.
		fast := frontier[len(frontier)-1]
		fmt.Printf("no evaluated plan meets the %.0fms P95 SLO; the frontier's fastest point is %s, %s at %s\n",
			sloMillis, fast.Model, fast.Scaler, metrics.FmtMillis(fast.P95))
	} else {
		fmt.Println("no plans evaluated")
	}
	if budget > 0 {
		if best, ok := cost.BestUnderBudget(points, budget); ok {
			fmt.Printf("best plan under $%.2f: %s with the %s scaler, %s purchase mix — %s P95 for $%.2f\n",
				budget, best.Model, best.Scaler, best.Mix, metrics.FmtMillis(best.P95), best.USD)
		} else {
			fmt.Printf("no evaluated plan fits a $%.2f budget over the horizon\n", budget)
		}
	}
	return nil
}
